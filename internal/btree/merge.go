package btree

import (
	"repro/internal/buffer"
	"repro/internal/obs"
	"repro/internal/page"
)

// Page merging. The paper handles splits in detail and notes (citing Lanin
// & Shasha) that merges are their mirror image; POSTGRES deferred them to
// the vacuum rather than doing them inline, and so does this reproduction:
// MergeUnderfull is an offline pass invoked by the garbage collector.
//
// The crash-safety protocol differs from the split's because a merged page
// has TWO predecessors and the key-range check cannot detect a missing
// subset (a half-empty page still passes). The protocol makes the parent
// update atomic and the merged page durable BEFORE it is referenced:
//
//  1. Build the merged page M on a fresh page and SYNC. M is a durable
//     orphan: a crash now leaves the old tree untouched.
//  2. Update the parent in one page image: redirect K1's child to M (with
//     K1.prev := M for shadow levels — M is itself the durable pre-image
//     now) and delete K2 with the careful line-table protocol. Single-page
//     writes are atomic (§2), so a crash persists either the old parent
//     (old tree, M leaks until the next vacuum) or the new one (merged
//     tree, A and B leak until freed).
//  3. Queue A and B for the freelist after the next sync.

// MergeThreshold is the fill fraction below which two adjacent siblings
// are merged when their combined contents fit on one page.
const MergeThreshold = 0.25

// MergeStats reports what a merge pass did.
type MergeStats struct {
	Examined int
	Merged   int
	Syncs    int
}

// MergeUnderfull walks the tree bottom-up once and merges adjacent sibling
// pairs (same parent) whose combined items fit comfortably on one page.
// The tree must be quiescent; every merge costs one sync, which is why this
// is vacuum work and not inline work.
func (t *Tree) MergeUnderfull() (MergeStats, error) {
	var st MergeStats
	t.mu.Lock()
	defer t.mu.Unlock()

	// Walk parents of leaves first, then upper levels, re-descending
	// after each merge because the structure changes underneath.
	for level := uint8(0); ; level++ {
		merged, examined, err := t.mergeLevelLocked(level, &st)
		st.Examined += examined
		if err != nil {
			return st, err
		}
		h, err := t.heightLocked()
		if err != nil {
			return st, err
		}
		if int(level)+1 >= h {
			break
		}
		_ = merged
	}
	if err := t.collapseRootLocked(&st); err != nil {
		return st, err
	}
	return st, nil
}

// collapseRootLocked shrinks the tree while the root is an internal page
// with a single entry: after a sync (so the child is durable) the meta
// page swings the root pointer to the child in one atomic page write,
// exactly like the merge's parent update.
func (t *Tree) collapseRootLocked(st *MergeStats) error {
	for {
		metaFrame, rootFrame, rootNo, err := t.getRoot(true)
		if err != nil {
			return err
		}
		if rootNo == 0 || rootFrame.Data.Type() != page.TypeInternal ||
			rootFrame.Data.NKeys() != 1 || rootFrame.Data.PrevNKeys() != 0 {
			if rootFrame != nil {
				rootFrame.Unpin()
			}
			metaFrame.Unpin()
			return nil
		}
		it, err := internalEntry(rootFrame.Data, 0)
		if err != nil {
			rootFrame.Unpin()
			metaFrame.Unpin()
			return err
		}
		childFrame, err := t.pool.Get(it.child)
		if err != nil {
			rootFrame.Unpin()
			metaFrame.Unpin()
			return err
		}
		// Make sure the child is durable before the meta references it
		// as the root.
		if !t.durable(childFrame.Data.SyncToken()) {
			if err := t.syncLocked(); err != nil {
				childFrame.Unpin()
				rootFrame.Unpin()
				metaFrame.Unpin()
				return err
			}
			st.Syncs++
		}
		m := metaPage{metaFrame.Data}
		m.setPrevRoot(rootNo)
		m.setRoot(it.child)
		m.setRootToken(childFrame.Data.SyncToken())
		metaFrame.MarkDirty()
		t.freeAfterSync(rootNo, nil, nil)
		childFrame.Unpin()
		rootFrame.Unpin()
		metaFrame.Unpin()
	}
}

func (t *Tree) heightLocked() (int, error) {
	metaFrame, rootFrame, rootNo, err := t.getRoot(true)
	if err != nil {
		return 0, err
	}
	metaFrame.Unpin()
	if rootNo == 0 {
		return 0, nil
	}
	h := int(rootFrame.Data.Level()) + 1
	rootFrame.Unpin()
	return h, nil
}

// mergeLevelLocked merges underfull adjacent pairs among children at the
// given level. It walks by key range, re-descending after every merge.
func (t *Tree) mergeLevelLocked(level uint8, st *MergeStats) (int, int, error) {
	mergedTotal, examined := 0, 0
	cur := []byte{}
	for {
		path, err := t.descendToLevel(cur, level+1)
		if err != nil {
			return mergedTotal, examined, err
		}
		if path == nil {
			return mergedTotal, examined, nil
		}
		parent := path[len(path)-1]
		if parent.frame.Data.Level() != level+1 {
			// The tree is shorter than this level pair; done.
			releasePath(path)
			return mergedTotal, examined, nil
		}
		didMerge, err := t.mergeWithinParent(&parent, st)
		if err != nil {
			releasePath(path)
			return mergedTotal, examined, err
		}
		examined++
		if didMerge {
			mergedTotal++
			// Re-descend: the parent changed. Stay on the same
			// range so chains of small pages collapse fully.
			releasePath(path)
			continue
		}
		hi := cloneBytes(parent.hi)
		releasePath(path)
		if hi == nil {
			return mergedTotal, examined, nil
		}
		cur = hi
	}
}

// descendToLevel descends toward key but stops at the given level.
func (t *Tree) descendToLevel(key []byte, level uint8) ([]pathEntry, error) {
	path, err := t.descendPath(key, true)
	if err != nil {
		return nil, err
	}
	if path == nil {
		return nil, nil
	}
	// Trim the path back to the requested level if present.
	for i, e := range path {
		if e.frame.Data.Level() == level {
			for _, rest := range path[i+1:] {
				rest.frame.Unpin()
			}
			return path[:i+1], nil
		}
	}
	return path, nil
}

// mergeWithinParent merges the first eligible adjacent pair under the
// parent; returns true if a merge happened.
func (t *Tree) mergeWithinParent(parent *pathEntry, st *MergeStats) (bool, error) {
	pp := parent.frame.Data
	if pp.Type() != page.TypeInternal || pp.NKeys() < 2 {
		return false, nil
	}
	threshold := int(float64(page.Size-page.HeaderSize) * MergeThreshold)
	for i := 0; i+1 < pp.NKeys(); i++ {
		aIt, err := internalEntry(pp, i)
		if err != nil {
			return false, err
		}
		bIt, err := internalEntry(pp, i+1)
		if err != nil {
			return false, err
		}
		aF, err := t.pool.Get(aIt.child)
		if err != nil {
			return false, err
		}
		bF, err := t.pool.Get(bIt.child)
		if err != nil {
			aF.Unpin()
			return false, err
		}
		// Measure LIVE content: deletions leave dead item bytes on the
		// page (reclaimed only by Compact), so raw free space
		// undercounts how empty a page really is.
		aUsed := liveBytes(aF.Data)
		bUsed := liveBytes(bF.Data)
		small := aUsed < threshold || bUsed < threshold
		combinedFit := aUsed+bUsed < (page.Size-page.HeaderSize)*3/4
		eligible := small && combinedFit &&
			aF.Data.PrevNKeys() == 0 && bF.Data.PrevNKeys() == 0 &&
			aF.Data.Valid() && bF.Data.Valid()
		if !eligible {
			aF.Unpin()
			bF.Unpin()
			continue
		}
		err = t.mergePair(parent, i, aIt, bIt, aF, bF, st)
		aF.Unpin()
		bF.Unpin()
		if err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// mergePair executes the two-phase merge of children at entries i and i+1.
func (t *Tree) mergePair(parent *pathEntry, i int, aIt, bIt internalItem, aF, bF *buffer.Frame, st *MergeStats) error {
	pp := parent.frame.Data
	level := aF.Data.Level()
	t.obs.Eventf(obs.MergeStart, aIt.child, "level %d: merging %d + %d onto a fresh page", level, aIt.child, bIt.child)

	aLo, _, err := childRange(pp, i, parent.lo, parent.hi)
	if err != nil {
		return err
	}
	_, bHi, err := childRange(pp, i+1, parent.lo, parent.hi)
	if err != nil {
		return err
	}

	// Phase 1: build M on a fresh page and make it durable.
	aItems, err := liveItems(aF.Data)
	if err != nil {
		return err
	}
	bItems, err := liveItems(bF.Data)
	if err != nil {
		return err
	}
	merged, err := mergeItemRuns(aItems, bItems)
	if err != nil {
		return err
	}
	mNo, mF, err := t.allocPage(aLo, bHi)
	if err != nil {
		return err
	}
	defer mF.Unpin()
	t.initTreePage(mF, level)
	if err := buildPage(mF.Data, merged); err != nil {
		return err
	}
	if level == 0 {
		// Stitch M into the peer chain where A and B sat: the outer
		// neighbors link directly at M with fresh shared tokens.
		if err := t.fixMergedPeers(aF.Data.LeftPeer(), bF.Data.RightPeer(), mNo, mF); err != nil {
			return err
		}
	}
	mF.MarkDirty()
	if err := t.syncLocked(); err != nil {
		return err
	}
	st.Syncs++

	// Phase 2: one atomic parent-page update — K1 -> M (prev := M for
	// shadow levels: M is the durable pre-image of itself now), K2
	// deleted with the careful protocol.
	if pp.HasFlag(page.FlagShadow) {
		if err := patchInternalPrev(pp, i, mNo); err != nil {
			return err
		}
	}
	if err := patchInternalChild(pp, i, mNo); err != nil {
		return err
	}
	pp.ClearFlag(page.FlagLineClean)
	if err := pp.DeleteSlot(i + 1); err != nil {
		return err
	}
	pp.AddFlag(page.FlagLineClean)
	parent.frame.MarkDirty()

	// Phase 3: retire A and B once the new parent is durable.
	t.freeAfterSync(aIt.child, aLo, bHi)
	t.freeAfterSync(bIt.child, aLo, bHi)
	st.Merged++
	t.obs.Eventf(obs.MergeCommit, mNo, "parent updated atomically; %d and %d retired", aIt.child, bIt.child)
	return nil
}

// liveBytes sums the on-page footprint of the live items plus their
// line-table entries.
func liveBytes(p page.Page) int {
	total := 0
	for i := 0; i < p.NKeys(); i++ {
		item := p.Item(i)
		if item == nil {
			return page.Size // treat unreadable as full: never merge it
		}
		total += len(item) + 4 // item + length prefix + line-table slot
	}
	return total
}

// fixMergedPeers sets M's own peer pointers and re-links both outer
// neighbors directly at M with fresh shared tokens.
func (t *Tree) fixMergedPeers(leftPeer, rightPeer uint32, mNo uint32, mF *buffer.Frame) error {
	tok := t.counter.Current()
	mF.Data.SetLeftPeer(leftPeer)
	mF.Data.SetRightPeer(rightPeer)
	if leftPeer != 0 {
		lf, err := t.pool.Get(leftPeer)
		if err != nil {
			return err
		}
		if lf.Data.Valid() && lf.Data.Type() == page.TypeLeaf {
			lf.Data.SetRightPeer(mNo)
			lf.Data.SetRightPeerToken(tok)
			mF.Data.SetLeftPeerToken(tok)
			lf.MarkDirty()
		}
		lf.Unpin()
	}
	if rightPeer != 0 {
		rf, err := t.pool.Get(rightPeer)
		if err != nil {
			return err
		}
		if rf.Data.Valid() && rf.Data.Type() == page.TypeLeaf {
			rf.Data.SetLeftPeer(mNo)
			rf.Data.SetLeftPeerToken(tok)
			mF.Data.SetRightPeerToken(tok)
			rf.MarkDirty()
		}
		rf.Unpin()
	}
	mF.MarkDirty()
	return nil
}
