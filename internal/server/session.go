package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/txn"
)

// tidLen is the byte length of an encoded heap.TID, the suffix MakeUnique
// appends to turn a user key into a unique index key.
var tidLen = len(heap.TID{}.Bytes())

const (
	maxLine     = 1 << 20 // longest accepted request line
	defaultScan = 100     // SCAN row cap when the client gives none
	maxScan     = 100000
)

// session is one connection's state: at most one open transaction.
type session struct {
	srv *Server
	c   net.Conn
	r   *bufio.Reader
	w   *bufio.Writer
	tx  *core.Txn
}

func newSession(s *Server, c net.Conn) *session {
	return &session{
		srv: s,
		c:   c,
		r:   bufio.NewReaderSize(c, 64<<10),
		w:   bufio.NewWriterSize(c, 64<<10),
	}
}

// run is the session loop: read a line, execute, reply, until the client
// quits, the connection drops, or the server drains.
func (ss *session) run() {
	defer func() {
		// A connection that drops mid-transaction aborts it — exactly a
		// client crash in the §2 model: nothing to undo, the tuples are
		// simply never committed.
		if ss.tx != nil {
			_ = ss.tx.Abort()
			ss.tx = nil
		}
	}()
	for {
		if ss.srv.draining() {
			ss.reply("ERR shutdown server is draining")
			ss.w.Flush()
			return
		}
		line, err := ss.readLine()
		if err != nil {
			if errors.Is(err, errLineTooLong) {
				ss.reply("ERR usage line too long")
				ss.w.Flush()
				return
			}
			// A final unterminated line is served only on a clean EOF — the
			// client wrote it whole and closed. On any other error (read
			// deadline during drain, reset peer) the line may be a TRUNCATED
			// prefix of a command still in flight; executing it could
			// durably autocommit a corrupted write, so drop it and close.
			if !errors.Is(err, io.EOF) || len(line) == 0 {
				return
			}
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			continue
		}
		if !ss.dispatch(line) {
			ss.w.Flush()
			return
		}
		if err := ss.w.Flush(); err != nil {
			return
		}
	}
}

// errLineTooLong rejects a request line that exceeded maxLine before a
// newline arrived.
var errLineTooLong = errors.New("server: request line too long")

// readLine reads one newline-terminated request line, enforcing maxLine
// incrementally: the line is rejected as soon as the cap is crossed, never
// buffered whole first, so a client streaming an endless unterminated line
// cannot grow server memory past maxLine plus one bufio buffer.
func (ss *session) readLine() (string, error) {
	var buf []byte
	for {
		frag, err := ss.r.ReadSlice('\n')
		if len(buf)+len(frag) > maxLine {
			return "", errLineTooLong
		}
		buf = append(buf, frag...)
		if err == bufio.ErrBufferFull {
			continue // long line spans bufio buffers; keep accumulating
		}
		return string(buf), err
	}
}

// dispatch executes one request line; false means close the session.
func (ss *session) dispatch(line string) bool {
	verb := line
	rest := ""
	if i := strings.IndexByte(line, ' '); i >= 0 {
		verb, rest = line[:i], line[i+1:]
	}
	switch strings.ToUpper(verb) {
	case "BEGIN":
		ss.cmdBegin()
	case "PUT":
		ss.cmdPut(rest)
	case "MPUT":
		ss.cmdMput(rest)
	case "GET":
		ss.cmdGet(rest)
	case "DEL":
		ss.cmdDel(rest)
	case "SCAN":
		ss.cmdScan(rest)
	case "COMMIT":
		ss.cmdCommit()
	case "ABORT":
		ss.cmdAbort()
	case "STATS":
		ss.cmdStats()
	case "QUIT":
		ss.reply("OK bye")
		return false
	default:
		ss.reply("ERR usage unknown verb %q", verb)
	}
	return true
}

func (ss *session) reply(format string, args ...any) {
	fmt.Fprintf(ss.w, format+"\n", args...)
}

// fail maps engine errors onto protocol error codes.
func (ss *session) fail(err error) {
	switch {
	case errors.Is(err, txn.ErrCommitFailed):
		ss.reply("ERR retry %v", err)
	case errors.Is(err, core.ErrReadOnly):
		ss.reply("ERR readonly %v", err)
	case errors.Is(err, core.ErrFailed):
		ss.reply("ERR failed %v", err)
	case errors.Is(err, core.ErrQuarantined):
		ss.reply("ERR quarantined %v", err)
	default:
		ss.reply("ERR server %v", err)
	}
}

func (ss *session) cmdBegin() {
	if ss.tx != nil {
		ss.reply("ERR txn transaction %d already open", ss.tx.XID())
		return
	}
	ss.tx = ss.srv.db.Begin()
	ss.reply("OK %d", ss.tx.XID())
}

func (ss *session) cmdCommit() {
	if ss.tx == nil {
		ss.reply("ERR notxn no transaction open")
		return
	}
	tx := ss.tx
	ss.tx = nil // committed or aborted either way — never limbo
	if err := tx.Commit(); err != nil {
		ss.fail(err)
		return
	}
	ss.reply("OK %d", tx.XID())
}

func (ss *session) cmdAbort() {
	if ss.tx == nil {
		ss.reply("ERR notxn no transaction open")
		return
	}
	tx := ss.tx
	ss.tx = nil
	if err := tx.Abort(); err != nil {
		ss.fail(err)
		return
	}
	ss.reply("OK %d", tx.XID())
}

// withTxn runs fn under the session transaction, or under a fresh
// autocommit transaction that commits (or aborts on error) around it.
func (ss *session) withTxn(fn func(tx *core.Txn) error) error {
	if ss.tx != nil {
		return fn(ss.tx)
	}
	tx := ss.srv.db.Begin()
	if err := fn(tx); err != nil {
		_ = tx.Abort()
		return err
	}
	return tx.Commit()
}

func (ss *session) cmdPut(rest string) {
	i := strings.IndexByte(rest, ' ')
	if rest == "" || i <= 0 || i == len(rest)-1 {
		ss.reply("ERR usage PUT <key> <value>")
		return
	}
	key, value := []byte(rest[:i]), []byte(rest[i+1:])
	err := ss.withTxn(func(tx *core.Txn) error { return ss.srv.put(tx, key, value) })
	if err != nil {
		ss.fail(err)
		return
	}
	ss.reply("OK")
}

// cmdMput writes several pairs in one round trip. Unlike PUT, values are
// single tokens (the line is split on spaces). All pairs go through one
// transaction and one batched index insert, so a big MPUT pays one descent
// per leaf run and — outside BEGIN — one commit sync, not one per pair.
func (ss *session) cmdMput(rest string) {
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields)%2 != 0 {
		ss.reply("ERR usage MPUT <key> <value> [<key> <value> ...]")
		return
	}
	n := len(fields) / 2
	keys := make([][]byte, n)
	values := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = []byte(fields[2*i])
		values[i] = []byte(fields[2*i+1])
	}
	err := ss.withTxn(func(tx *core.Txn) error { return ss.srv.putBatch(tx, keys, values) })
	if err != nil {
		ss.fail(err)
		return
	}
	ss.reply("OK %d", n)
}

func (ss *session) cmdGet(rest string) {
	if rest == "" || strings.ContainsRune(rest, ' ') {
		ss.reply("ERR usage GET <key>")
		return
	}
	_, val, ok, err := ss.srv.lookupVisible([]byte(rest))
	if err != nil {
		ss.fail(err)
		return
	}
	if !ok {
		ss.reply("NOTFOUND")
		return
	}
	ss.reply("OK %s", val)
}

func (ss *session) cmdDel(rest string) {
	if rest == "" || strings.ContainsRune(rest, ' ') {
		ss.reply("ERR usage DEL <key>")
		return
	}
	found := false
	err := ss.withTxn(func(tx *core.Txn) error {
		var err error
		found, err = ss.srv.del(tx, []byte(rest))
		return err
	})
	if err != nil {
		ss.fail(err)
		return
	}
	if !found {
		ss.reply("NOTFOUND")
		return
	}
	ss.reply("OK")
}

func (ss *session) cmdScan(rest string) {
	fields := strings.Fields(rest)
	if len(fields) < 2 || len(fields) > 3 {
		ss.reply("ERR usage SCAN <lo> <hi> [limit]  (\"-\" = open bound)")
		return
	}
	var lo, hi []byte
	if fields[0] != "-" {
		lo = []byte(fields[0])
	}
	if fields[1] != "-" {
		hi = []byte(fields[1])
	}
	limit := defaultScan
	if len(fields) == 3 {
		n, err := strconv.Atoi(fields[2])
		if err != nil || n <= 0 || n > maxScan {
			ss.reply("ERR usage bad limit %q (1..%d)", fields[2], maxScan)
			return
		}
		limit = n
	}
	rows, err := ss.srv.scanVisible(lo, hi, limit)
	if err != nil {
		ss.fail(err)
		return
	}
	for _, r := range rows {
		ss.reply("ROW %s %s", r.key, r.val)
	}
	ss.reply("OK %d", len(rows))
}

func (ss *session) cmdStats() {
	snap := ss.srv.db.Metrics()
	cache := ss.srv.db.CacheStats()
	stats := map[string]any{
		"health":              ss.srv.db.Health().String(),
		"commit_txns":         snap.Counters["commit.txn"],
		"commit_batches":      snap.Counters["commit.batch"],
		"commit_fails":        snap.Counters["commit.fail"],
		"commit_sync_skipped": snap.Counters["commit.sync.skipped"],
		"flush_passes":        snap.Counters["flush.daemon"],
		"cache_hits":          cache.Hits,
		"cache_misses":        cache.Misses,
		"evict_promotions":    snap.Counters["pool.evict.promote"],
		"batch_puts":          snap.Counters["batch.put"],
		"batch_leaf_runs":     snap.Counters["batch.leafrun"],
	}
	if six := ss.srv.sharded; six != nil {
		stats["shards"] = six.Shards()
		stats["shard_stats"] = six.ShardStats()
	}
	b, err := json.Marshal(stats)
	if err != nil {
		ss.fail(err)
		return
	}
	ss.reply("OK %s", b)
}

// --- KV semantics over the heap + index ----------------------------------
//
// The index holds <user key, TID> made unique POSTGRES-style by appending
// the 6-byte tuple identifier (core.MakeUnique, §2). A user key therefore
// owns a contiguous run of index entries — one per tuple version — and
// tuple visibility against the status table decides which one is current.
// Dead entries (aborted writers, superseded versions) are tolerated by
// readers and reclaimed by the vacuum, never transactionally.

// lookupVisible resolves key to its newest visible version. Multiple
// visible versions can exist only under concurrent uncoordinated writers
// (the engine has no write-write locking); the highest TID — the latest
// heap placement — wins deterministically.
func (s *Server) lookupVisible(key []byte) (heap.TID, []byte, bool, error) {
	var (
		bestTID heap.TID
		bestVal []byte
		found   bool
	)
	err := s.idx.Scan(key, nil, func(e []byte, tid heap.TID) bool {
		if !bytes.HasPrefix(e, key) {
			return false // sorted: once past the key's prefix run, done
		}
		if len(e) != len(key)+tidLen {
			return true // a longer user key sharing the prefix; keep going
		}
		data, err := s.rel.Fetch(tid)
		if err != nil {
			return true // dead or invisible version
		}
		if !found || tidLess(bestTID, tid) {
			bestTID, bestVal, found = tid, data, true
		}
		return true
	})
	if err != nil {
		return heap.TID{}, nil, false, err
	}
	return bestTID, bestVal, found, nil
}

func tidLess(a, b heap.TID) bool {
	if a.PageNo != b.PageNo {
		return a.PageNo < b.PageNo
	}
	return a.Slot < b.Slot
}

// put writes key=value under tx: an update of the current visible version
// if one exists, an insert otherwise. The new version gets its own index
// entry; the old entry stays behind pointing at the now-dead version, as
// the no-overwrite discipline requires.
func (s *Server) put(tx *core.Txn, key, value []byte) error {
	old, _, exists, err := s.lookupVisible(key)
	if err != nil {
		return err
	}
	var tid heap.TID
	if exists {
		tid, err = s.rel.Update(tx, old, value)
	} else {
		tid, err = s.rel.Insert(tx, value)
	}
	if err != nil {
		return err
	}
	return s.idx.InsertTID(tx, core.MakeUnique(key, tid), tid)
}

// putBatch is put over many pairs: each pair resolves its visible version
// and writes its heap tuple individually, then every index entry lands in
// one InsertTIDBatch. MakeUnique appends the tuple's TID, so the batch's
// index keys are distinct even when user keys repeat within it (each
// occurrence gets its own version; the highest TID stays the visible one).
func (s *Server) putBatch(tx *core.Txn, keys, values [][]byte) error {
	ikeys := make([][]byte, len(keys))
	tids := make([]heap.TID, len(keys))
	for i := range keys {
		old, _, exists, err := s.lookupVisible(keys[i])
		if err != nil {
			return err
		}
		var tid heap.TID
		if exists {
			tid, err = s.rel.Update(tx, old, values[i])
		} else {
			tid, err = s.rel.Insert(tx, values[i])
		}
		if err != nil {
			return err
		}
		ikeys[i] = core.MakeUnique(keys[i], tid)
		tids[i] = tid
	}
	return s.idx.InsertTIDBatch(tx, ikeys, tids)
}

// del stamps the current visible version dead. The index entry remains;
// visibility filtering hides it immediately after commit.
func (s *Server) del(tx *core.Txn, key []byte) (bool, error) {
	tid, _, exists, err := s.lookupVisible(key)
	if err != nil || !exists {
		return false, err
	}
	return true, s.rel.Delete(tx, tid)
}

type kvRow struct{ key, val []byte }

// scanVisible walks user keys in [lo, hi) (nil = open bound), resolving
// each to its newest visible version, and returns up to limit rows in key
// order.
func (s *Server) scanVisible(lo, hi []byte, limit int) ([]kvRow, error) {
	type cand struct {
		tid heap.TID
		val []byte
	}
	// best holds a candidate newest version for each of the (up to limit)
	// smallest in-range keys seen so far; keys mirrors its key set in
	// sorted order. Keys beyond the limit-th are evicted as smaller ones
	// arrive — they can never appear in the result.
	best := make(map[string]cand)
	var keys []string
	err := s.idx.Scan(lo, nil, func(e []byte, tid heap.TID) bool {
		if len(e) < tidLen {
			return true
		}
		key := e[:len(e)-tidLen]
		inRange := (lo == nil || bytes.Compare(key, lo) >= 0) &&
			(hi == nil || bytes.Compare(key, hi) < 0)
		if !inRange {
			// Entries of a user key form the contiguous index range
			// prefixed by that key, but entries of DIFFERENT keys that
			// share a prefix interleave: "a"+tid entries straddle every
			// "a?"+tid run. So an out-of-range entry only ends the scan
			// once no in-range key could still prefix later entries.
			if hi != nil && !hasInRangePrefix(e, lo, hi) {
				return false
			}
			return true
		}
		ks := string(key)
		if _, tracked := best[ks]; !tracked && len(keys) == limit && ks > keys[limit-1] {
			// The result set is full and this key sorts past its largest
			// member, so it cannot appear in the first limit rows. Keys
			// are NOT visited in key order (the prefix interleaving
			// above), so this alone does not end the scan: the only keys
			// <= keys[limit-1] whose entries can still follow e are
			// proper prefixes of e — a prefix key's entry run straddles
			// its extensions' runs, every other key's run is fully
			// behind us. Once no such prefix could exist, we are done.
			if !hasPrefixThrough(e, lo, []byte(keys[limit-1])) {
				return false
			}
			return true
		}
		data, err := s.rel.Fetch(tid)
		if err != nil {
			return true // dead version
		}
		if prev, ok := best[ks]; ok {
			if tidLess(prev.tid, tid) {
				best[ks] = cand{tid, data}
			}
			return true
		}
		best[ks] = cand{tid, data}
		i := sort.SearchStrings(keys, ks)
		keys = append(keys, "")
		copy(keys[i+1:], keys[i:])
		keys[i] = ks
		if len(keys) > limit {
			delete(best, keys[limit])
			keys = keys[:limit]
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	rows := make([]kvRow, 0, len(keys))
	for _, ks := range keys {
		rows = append(rows, kvRow{key: []byte(ks), val: best[ks].val})
	}
	return rows, nil
}

// hasInRangePrefix reports whether any proper prefix of index entry e is a
// user key inside [lo, hi) — conservatively, whether such a key COULD
// exist: if one does, its remaining entries may still follow e, so the
// scan must keep going.
func hasInRangePrefix(e, lo, hi []byte) bool {
	for n := 0; n < len(e); n++ {
		p := e[:n]
		if (lo == nil || bytes.Compare(p, lo) >= 0) && bytes.Compare(p, hi) < 0 {
			return true
		}
	}
	return false
}

// hasPrefixThrough is hasInRangePrefix with an INCLUSIVE upper bound: could
// any proper prefix of e be a user key in [lo, ub]? Used for the limit
// cutoff, where ub — the largest key currently in the result set — is
// itself still a live candidate.
func hasPrefixThrough(e, lo, ub []byte) bool {
	for n := 0; n < len(e); n++ {
		p := e[:n]
		if (lo == nil || bytes.Compare(p, lo) >= 0) && bytes.Compare(p, ub) <= 0 {
			return true
		}
	}
	return false
}
