package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/storage"
)

// client is a scripted protocol client for tests.
type client struct {
	t *testing.T
	c net.Conn
	r *bufio.Reader
}

func dial(t *testing.T, srv *Server) *client {
	t.Helper()
	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &client{t: t, c: c, r: bufio.NewReader(c)}
}

func (cl *client) send(line string) {
	cl.t.Helper()
	if _, err := fmt.Fprintf(cl.c, "%s\n", line); err != nil {
		cl.t.Fatalf("send %q: %v", line, err)
	}
}

func (cl *client) recv() string {
	cl.t.Helper()
	cl.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := cl.r.ReadString('\n')
	if err != nil {
		cl.t.Fatalf("recv: %v (got %q)", err, line)
	}
	return strings.TrimRight(line, "\r\n")
}

// do sends a request and returns the single-line reply.
func (cl *client) do(line string) string {
	cl.t.Helper()
	cl.send(line)
	return cl.recv()
}

// expect sends a request and requires an exact reply.
func (cl *client) expect(line, want string) {
	cl.t.Helper()
	if got := cl.do(line); got != want {
		cl.t.Fatalf("%s: got %q, want %q", line, got, want)
	}
}

// expectPrefix sends a request and requires a reply prefix.
func (cl *client) expectPrefix(line, prefix string) string {
	cl.t.Helper()
	got := cl.do(line)
	if !strings.HasPrefix(got, prefix) {
		cl.t.Fatalf("%s: got %q, want prefix %q", line, got, prefix)
	}
	return got
}

// scan sends a SCAN and returns the ROW lines plus the final OK/ERR line.
func (cl *client) scan(line string) (rows []string, final string) {
	cl.t.Helper()
	cl.send(line)
	for {
		got := cl.recv()
		if strings.HasPrefix(got, "ROW ") {
			rows = append(rows, strings.TrimPrefix(got, "ROW "))
			continue
		}
		return rows, got
	}
}

func newTestServer(t *testing.T, store core.Storage) (*core.DB, *Server) {
	t.Helper()
	db, err := core.Open(store, core.Config{Obs: obs.New(64)})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db, Options{DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return db, srv
}

// TestServerSmoke exercises every protocol verb over real TCP, including
// the error paths, then asserts a clean graceful shutdown.
func TestServerSmoke(t *testing.T) {
	db, srv := newTestServer(t, core.Memory())
	defer db.Close()
	cl := dial(t, srv)

	// Explicit transaction: own writes are invisible until COMMIT (reads
	// see committed data only), then durable and visible.
	begin := cl.expectPrefix("BEGIN", "OK ")
	xid := strings.TrimPrefix(begin, "OK ")
	cl.expect("PUT alpha one", "OK")
	cl.expect("PUT beta two words here", "OK")
	cl.expect("GET alpha", "NOTFOUND")
	cl.expect("COMMIT", "OK "+xid)
	cl.expect("GET alpha", "OK one")
	cl.expect("GET beta", "OK two words here")

	// Autocommit: visible immediately after the OK.
	cl.expect("PUT gamma three", "OK")
	cl.expect("GET gamma", "OK three")

	// Update in place (logically): newest committed version wins.
	cl.expect("PUT alpha uno", "OK")
	cl.expect("GET alpha", "OK uno")

	// ABORT discards the transaction's writes.
	cl.expectPrefix("BEGIN", "OK ")
	cl.expect("PUT doomed never", "OK")
	cl.expectPrefix("ABORT", "OK ")
	cl.expect("GET doomed", "NOTFOUND")

	// DEL, both present and absent.
	cl.expect("DEL gamma", "OK")
	cl.expect("GET gamma", "NOTFOUND")
	cl.expect("DEL gamma", "NOTFOUND")

	// SCAN: range, open bounds, limit.
	rows, final := cl.scan("SCAN - -")
	if final != "OK 2" || len(rows) != 2 {
		t.Fatalf("SCAN - -: rows=%v final=%q", rows, final)
	}
	if rows[0] != "alpha uno" || rows[1] != "beta two words here" {
		t.Fatalf("SCAN rows out of order or wrong: %v", rows)
	}
	rows, final = cl.scan("SCAN alpha beta")
	if final != "OK 1" || len(rows) != 1 || rows[0] != "alpha uno" {
		t.Fatalf("SCAN alpha beta: rows=%v final=%q", rows, final)
	}
	rows, final = cl.scan("SCAN - - 1")
	if final != "OK 1" || len(rows) != 1 {
		t.Fatalf("SCAN with limit: rows=%v final=%q", rows, final)
	}

	// STATS reports through the obs recorder.
	stats := cl.expectPrefix("STATS", "OK {")
	if !strings.Contains(stats, `"commit_txns":`) || !strings.Contains(stats, `"health":`) {
		t.Fatalf("STATS missing fields: %q", stats)
	}

	// Error paths.
	cl.expectPrefix("FROB x", "ERR usage")
	cl.expectPrefix("PUT loner", "ERR usage")
	cl.expectPrefix("GET two tokens", "ERR usage")
	cl.expectPrefix("SCAN justone", "ERR usage")
	cl.expectPrefix("SCAN a b nope", "ERR usage")
	cl.expectPrefix("COMMIT", "ERR notxn")
	cl.expectPrefix("ABORT", "ERR notxn")
	cl.expectPrefix("BEGIN", "OK ")
	cl.expectPrefix("BEGIN", "ERR txn")
	cl.expectPrefix("ABORT", "OK ")

	// QUIT closes the session from the server side.
	cl.expect("QUIT", "OK bye")
	if _, err := cl.r.ReadString('\n'); err == nil {
		t.Fatal("connection still open after QUIT")
	}

	// Graceful shutdown with idle sessions drains cleanly.
	idle := dial(t, srv)
	_ = idle
	if err := srv.Close(); err != nil {
		t.Fatalf("graceful Close: %v", err)
	}
}

// TestServerDrainsInFlightCommit: a commit already executing when Close is
// called completes and the client gets its OK before the drain finishes.
func TestServerDrainsInFlightCommit(t *testing.T) {
	store := core.Memory()
	db, srv := newTestServer(t, store)
	defer db.Close()

	// Slow the control disk so the commit is still in its device sync when
	// Close lands.
	core.MemoryDisks(store)["control"].SetLatency(0, 2*time.Millisecond)

	cl := dial(t, srv)
	cl.expectPrefix("BEGIN", "OK ")
	for i := 0; i < 20; i++ {
		cl.expect(fmt.Sprintf("PUT drain-%02d v%d", i, i), "OK")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond) // let COMMIT start first
		if err := srv.Close(); err != nil {
			t.Errorf("Close during in-flight commit: %v", err)
		}
	}()
	cl.expectPrefix("COMMIT", "OK ")
	wg.Wait()

	// New connections are refused once draining.
	if c, err := net.Dial("tcp", srv.Addr().String()); err == nil {
		c.Close()
		// The listener may race the close; what matters is no session is
		// served: a request must get no reply.
		c2, err := net.Dial("tcp", srv.Addr().String())
		if err == nil {
			c2.Close()
		}
	}

	// The commit that raced the shutdown is durable.
	for _, d := range core.MemoryDisks(store) {
		if err := d.CrashPartial(storage.CrashNone); err != nil {
			t.Fatal(err)
		}
	}
	db2, err := core.Open(store, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	srv2, err := New(db2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cl2 := dial(t, srv2)
	cl2.expect("GET drain-00", "OK v0")
	cl2.expect("GET drain-19", "OK v19")
}

// TestServerCrashRecover is the paper's pitch run end to end over the
// wire: commit through one server generation, crash the machine (every
// unsynced write lost), reopen instantly, and serve the committed data —
// with the in-flight transaction's writes gone.
func TestServerCrashRecover(t *testing.T) {
	store := core.Memory()
	db, srv := newTestServer(t, store)
	_ = db // deliberately never closed: the machine dies, it doesn't exit

	cl := dial(t, srv)
	for i := 0; i < 10; i++ {
		cl.expect(fmt.Sprintf("PUT stable-%02d value-%d", i, i), "OK")
	}
	cl.expect("DEL stable-03", "OK")

	// A second client dies mid-transaction: its writes must not survive.
	loser := dial(t, srv)
	loser.expectPrefix("BEGIN", "OK ")
	loser.expect("PUT phantom boo", "OK")
	loser.expect("PUT stable-00 overwritten", "OK")

	// The machine dies: no Close, no flush — every write that was not
	// device-synced is gone.
	for _, d := range core.MemoryDisks(store) {
		if err := d.CrashPartial(storage.CrashNone); err != nil {
			t.Fatal(err)
		}
	}

	// Restart: open + serve, no log replay.
	db2, err := core.Open(store, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	srv2, err := New(db2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	cl2 := dial(t, srv2)
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("stable-%02d", i)
		if i == 3 {
			cl2.expect("GET "+key, "NOTFOUND") // committed delete survived
			continue
		}
		cl2.expect("GET "+key, fmt.Sprintf("OK value-%d", i))
	}
	cl2.expect("GET phantom", "NOTFOUND") // in-flight txn vanished
	rows, final := cl2.scan("SCAN - -")
	if final != "OK 9" {
		t.Fatalf("post-crash SCAN: rows=%v final=%q", rows, final)
	}

	cl2.expect("QUIT", "OK bye")
	if err := srv2.Close(); err != nil {
		t.Fatalf("graceful Close after recovery: %v", err)
	}
}

// TestServerConcurrentClients hammers autocommit PUTs from several
// connections at once — the group-commit path end to end — then checks
// every committed key reads back and the coordinator actually batched.
func TestServerConcurrentClients(t *testing.T) {
	store := core.Memory()
	rec := obs.New(64)
	db, err := core.Open(store, core.Config{Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv, err := New(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// A write cost on every device keeps commits overlapping so the
	// coordinator actually forms multi-member batches.
	for _, d := range core.MemoryDisks(store) {
		d.SetLatency(0, 200*time.Microsecond)
	}

	const clients, puts = 8, 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; i < puts; i++ {
				fmt.Fprintf(conn, "PUT c%d-k%02d v%d.%d\n", c, i, c, i)
				line, err := r.ReadString('\n')
				if err != nil || strings.TrimSpace(line) != "OK" {
					t.Errorf("client %d put %d: %q %v", c, i, line, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	cl := dial(t, srv)
	for c := 0; c < clients; c++ {
		for i := 0; i < puts; i++ {
			cl.expect(fmt.Sprintf("GET c%d-k%02d", c, i), fmt.Sprintf("OK v%d.%d", c, i))
		}
	}
	if got := rec.Get(obs.CommitTxn); got < clients*puts {
		t.Fatalf("commit.txn = %d, want >= %d", got, clients*puts)
	}
	if rec.Get(obs.CommitBatch) >= rec.Get(obs.CommitTxn) {
		t.Fatalf("no batching: %d batches for %d txns",
			rec.Get(obs.CommitBatch), rec.Get(obs.CommitTxn))
	}
}

// TestServerDropsTruncatedPartialLineOnDrain: a command whose bytes are
// still in flight when the server drains must NOT be executed. TCP can
// segment a line anywhere, so a read interrupted by the drain deadline may
// hold a truncated prefix of a command ("PUT trunc hel" of
// "PUT trunc hello"); executing it would durably autocommit a corrupted
// value. Only a clean EOF proves the final unterminated line arrived whole.
func TestServerDropsTruncatedPartialLineOnDrain(t *testing.T) {
	db, srv := newTestServer(t, core.Memory())
	defer db.Close()

	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Half a command, no newline; the rest never arrives.
	if _, err := c.Write([]byte("PUT trunc hel")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the session park in its read
	if err := srv.Close(); err != nil {
		t.Fatalf("graceful Close: %v", err)
	}

	_, _, found, err := srv.lookupVisible([]byte("trunc"))
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("truncated partial line was executed at drain")
	}
}

// TestServerServesFinalLineOnCleanEOF is the flip side: a client that
// writes a complete command and closes without a trailing newline DID send
// the whole line — the clean EOF proves it — so it is served.
func TestServerServesFinalLineOnCleanEOF(t *testing.T) {
	db, srv := newTestServer(t, core.Memory())
	defer db.Close()
	defer srv.Close()

	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("PUT eof whole")); err != nil {
		t.Fatal(err)
	}
	c.Close() // FIN: the server's read returns the line plus io.EOF

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, val, found, err := srv.lookupVisible([]byte("eof"))
		if err != nil {
			t.Fatal(err)
		}
		if found {
			if string(val) != "whole" {
				t.Fatalf("final line value = %q, want %q", val, "whole")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("final unterminated line never served after clean EOF")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerRejectsOverlongLineIncrementally: the maxLine cap is enforced
// while the line streams in, so the server replies and closes as soon as
// the cap is crossed — it never waits for (or buffers) an unbounded
// unterminated line first.
func TestServerRejectsOverlongLineIncrementally(t *testing.T) {
	db, srv := newTestServer(t, core.Memory())
	defer db.Close()
	defer srv.Close()

	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go func() {
		// Stream several maxLine multiples with no newline; the write side
		// errors out once the server rejects and closes, which is fine.
		junk := make([]byte, 64<<10)
		for i := range junk {
			junk[i] = 'x'
		}
		for sent := 0; sent < 3*maxLine; sent += len(junk) {
			if _, err := c.Write(junk); err != nil {
				return
			}
		}
	}()

	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		t.Fatalf("no rejection for unterminated overlong line: %v", err)
	}
	if !strings.HasPrefix(line, "ERR usage line too long") {
		t.Fatalf("reply = %q, want line-too-long error", line)
	}
}

// TestScanPrefixInterleavedKeys pins SCAN against the index's raw entry
// order. Index entries are <user key><6-byte TID>, so entries of a SHORT
// key sort after entries of longer keys sharing its prefix whenever the
// short key's first TID byte (the heap page number's low byte) exceeds the
// longer key's next byte. A limit cutoff keyed on "distinct keys seen" can
// therefore stop before ever reaching the range's smallest key. Keys "a"
// (tuple forced onto heap page >= 1, TID first byte >= 1) and "a\x00?"
// (next key byte 0x00) produce exactly that interleaving.
func TestScanPrefixInterleavedKeys(t *testing.T) {
	db, srv := newTestServer(t, core.Memory())
	defer db.Close()
	defer srv.Close()
	cl := dial(t, srv)

	// Push the heap past page 0 so later tuples get TIDs with a nonzero
	// low page byte.
	pad := strings.Repeat("p", 2000)
	for i := 0; i < 24; i++ {
		cl.expect(fmt.Sprintf("PUT z%02d %s", i, pad), "OK")
	}
	for _, k := range []string{"a\x00a", "a\x00b", "a\x00c", "a\x00d"} {
		cl.expect("PUT "+k+" ext", "OK")
	}
	cl.expect("PUT a short", "OK")

	tid, _, found, err := srv.lookupVisible([]byte("a"))
	if err != nil || !found {
		t.Fatalf("lookup of key a: found=%v err=%v", found, err)
	}
	if byte(tid.PageNo) == 0 {
		t.Fatal("test setup: key \"a\" landed on heap page 0; its entries would not interleave — increase padding")
	}

	// "a" is the smallest key in [a, b) but its entries sort after every
	// "a\x00?" entry; a limited SCAN must still rank it first.
	rows, final := cl.scan("SCAN a b 2")
	if final != "OK 2" {
		t.Fatalf("SCAN a b 2: rows=%v final=%q", rows, final)
	}
	if rows[0] != "a short" || rows[1] != "a\x00a ext" {
		t.Fatalf("limited SCAN missed the low-sorting key: %q", rows)
	}

	// The unlimited range returns every key, still in key order.
	rows, final = cl.scan("SCAN a b")
	want := []string{"a short", "a\x00a ext", "a\x00b ext", "a\x00c ext", "a\x00d ext"}
	if final != fmt.Sprintf("OK %d", len(want)) {
		t.Fatalf("SCAN a b: rows=%v final=%q", rows, final)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("SCAN row %d = %q, want %q (all: %q)", i, rows[i], want[i], rows)
		}
	}
}

// TestServerShardedSmokeAndCrashRecover runs the protocol against a
// multi-shard primary index: writes hash across shards, SCAN merges the
// per-shard streams in key order, STATS exposes the per-shard breakdown
// plus the commit counters, and a crash + restart recovers every shard.
func TestServerShardedSmokeAndCrashRecover(t *testing.T) {
	const nShards = 4
	store := core.Memory()
	db, err := core.Open(store, core.Config{Obs: obs.New(64)})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db, Options{Shards: nShards, DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	cl := dial(t, srv)
	const n = 60
	for i := 0; i < n; i++ {
		cl.expect(fmt.Sprintf("PUT key-%03d val-%d", i, i), "OK")
	}
	for i := 0; i < n; i++ {
		cl.expect(fmt.Sprintf("GET key-%03d", i), fmt.Sprintf("OK val-%d", i))
	}
	// Merged scan across shards: full range, in key order.
	rows, final := cl.scan(fmt.Sprintf("SCAN - - %d", n))
	if final != fmt.Sprintf("OK %d", n) {
		t.Fatalf("sharded SCAN: final=%q rows=%d", final, len(rows))
	}
	for i, r := range rows {
		if want := fmt.Sprintf("key-%03d val-%d", i, i); r != want {
			t.Fatalf("sharded SCAN row %d = %q, want %q", i, r, want)
		}
	}
	// Bounded scan spanning shard boundaries.
	rows, final = cl.scan("SCAN key-010 key-015")
	if final != "OK 5" || rows[0] != "key-010 val-10" {
		t.Fatalf("bounded sharded SCAN: rows=%v final=%q", rows, final)
	}

	// STATS: per-shard breakdown and the commit batching counters.
	stats := cl.expectPrefix("STATS", "OK {")
	for _, field := range []string{
		`"shards":4`, `"shard_stats":[`, `"commit_sync_skipped":`,
		`"cache_hits":`, `"cache_misses":`, `"commit_batches":`,
	} {
		if !strings.Contains(stats, field) {
			t.Fatalf("sharded STATS missing %s: %q", field, stats)
		}
	}

	// A transaction in flight when the machine dies.
	loser := dial(t, srv)
	loser.expectPrefix("BEGIN", "OK ")
	loser.expect("PUT phantom boo", "OK")
	for _, d := range core.MemoryDisks(store) {
		if err := d.CrashPartial(storage.CrashNone); err != nil {
			t.Fatal(err)
		}
	}

	// Restart against the same files: the shard count is persisted, so
	// Options{Shards: nShards} reopens the same layout; recovery is just
	// reopening + serving.
	db2, err := core.Open(store, core.Config{Obs: obs.New(64)})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	srv2, err := New(db2, Options{Shards: nShards})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	cl2 := dial(t, srv2)
	for i := 0; i < n; i++ {
		cl2.expect(fmt.Sprintf("GET key-%03d", i), fmt.Sprintf("OK val-%d", i))
	}
	cl2.expect("GET phantom", "NOTFOUND")
	rows, final = cl2.scan(fmt.Sprintf("SCAN - - %d", n))
	if final != fmt.Sprintf("OK %d", n) {
		t.Fatalf("post-crash sharded SCAN: final=%q rows=%d", final, len(rows))
	}

	// A mismatched shard count on the same files is refused loudly.
	if _, err := New(db2, Options{Relation: "kv2", Index: "kv_pk", Shards: 2}); err == nil {
		t.Fatal("reopening the sharded index with a different shard count must fail")
	}

	cl2.expect("QUIT", "OK bye")
	if err := srv2.Close(); err != nil {
		t.Fatalf("graceful Close: %v", err)
	}
	if err := srv.Close(); err == nil {
		_ = err // first server died with the "machine"; Close best-effort
	}
}
