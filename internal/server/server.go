// Package server is the long-lived network front end over a core.DB: a
// line-based TCP protocol with per-connection sessions, explicit or
// autocommit transactions, and a graceful shutdown that drains in-flight
// commits. Concurrency is where the engine's group commit earns its keep:
// every connection that commits at the same instant coalesces onto one
// unordered device sync and one status-table append (internal/txn), so
// committed-transactions/sec scales with client count instead of
// serializing behind per-transaction fsyncs.
//
// The protocol (one request per line, space-separated; keys are single
// tokens, a PUT value is the remainder of the line):
//
//	BEGIN              -> OK <xid>
//	PUT <key> <value>  -> OK            (autocommits when outside BEGIN)
//	MPUT <k> <v> [<k> <v> ...] -> OK <n>  (n pairs written through the
//	                      batched index path; values are single tokens
//	                      here, autocommits when outside BEGIN)
//	GET <key>          -> OK <value> | NOTFOUND
//	DEL <key>          -> OK | NOTFOUND (autocommits when outside BEGIN)
//	SCAN <lo> <hi> [n] -> ROW <key> <value> ... then OK <count>  ("-" = open bound)
//	COMMIT             -> OK <xid> | ERR retry <why>
//	ABORT              -> OK <xid>
//	STATS              -> OK <one-line JSON>
//	QUIT               -> OK bye, then the server closes the connection
//
// Errors are "ERR <code> <message>"; code "retry" marks a commit that was
// aborted by a device failure and is safe to re-run as a new transaction.
// Reads see committed data only (the §2 status-table visibility rule), so
// a session's own writes become readable at COMMIT.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

// Options configures a Server.
type Options struct {
	// Relation and Index name the KV store's backing files. Defaults:
	// "kv" and "kv_pk".
	Relation string
	Index    string
	// Variant is the index algorithm for the primary index (default:
	// the DB config's default).
	Variant core.Variant
	// Shards partitions the primary index across this many independent
	// B-link trees (hash-routed, merged scans, parallel recovery). 0 or 1
	// keeps the single-tree index.
	Shards int
	// DrainTimeout bounds how long Close waits for in-flight sessions to
	// finish their current command (default 5s).
	DrainTimeout time.Duration
}

// Server serves the KV protocol over a core.DB.
type Server struct {
	db      *core.DB
	rel     *core.Relation
	idx     core.KVIndex
	sharded *core.ShardedIndex // nil when the index is single-tree

	drainTimeout time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	quit chan struct{}
	wg   sync.WaitGroup
}

// New builds a server over db, opening (creating as needed) its backing
// relation and index.
func New(db *core.DB, opts Options) (*Server, error) {
	if opts.Relation == "" {
		opts.Relation = "kv"
	}
	if opts.Index == "" {
		opts.Index = "kv_pk"
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 5 * time.Second
	}
	rel, err := db.CreateRelation(opts.Relation)
	if err != nil {
		return nil, err
	}
	var (
		idx     core.KVIndex
		sharded *core.ShardedIndex
	)
	if opts.Shards > 1 {
		six, err := db.CreateShardedIndex(opts.Index, opts.Variant, opts.Shards)
		if err != nil {
			return nil, err
		}
		idx, sharded = six, six
	} else {
		six, err := db.CreateIndex(opts.Index, opts.Variant)
		if err != nil {
			return nil, err
		}
		idx = six
	}
	return &Server{
		db:           db,
		rel:          rel,
		idx:          idx,
		sharded:      sharded,
		drainTimeout: opts.DrainTimeout,
		conns:        make(map[net.Conn]struct{}),
		quit:         make(chan struct{}),
	}, nil
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting sessions in
// the background. The bound address is available via Addr.
func (s *Server) Listen(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("server: closed")
	}
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(l)
	}()
	return nil
}

// Addr returns the bound listen address (nil before Listen).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			// Listener closed (shutdown) or fatal accept error.
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			newSession(s, conn).run()
		}()
	}
}

// draining reports whether Close has begun.
func (s *Server) draining() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

// Close gracefully shuts the server down: stop accepting, let every
// session finish the command it is executing (in-flight commits drain
// through the group-commit coordinator), then close the connections. The
// DB itself is not closed — the caller owns it. Returns an error if the
// drain timed out and sessions had to be cut.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	s.mu.Unlock()

	close(s.quit)
	if l != nil {
		l.Close()
	}
	// Unblock sessions parked in Read waiting for the next command; a
	// session mid-command keeps running until the command completes.
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(s.drainTimeout):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return fmt.Errorf("server: drain timed out after %v; connections cut", s.drainTimeout)
	}
}
