package server

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestServerMput: the batched write verb, autocommit and transactional,
// error shapes, update semantics, and the STATS counters it feeds.
func TestServerMput(t *testing.T) {
	db, srv := newTestServer(t, core.Memory())
	defer db.Close()
	cl := dial(t, srv)

	// Autocommit batch: all pairs visible right after the OK.
	cl.expect("MPUT a 1 b 2 c 3", "OK 3")
	cl.expect("GET a", "OK 1")
	cl.expect("GET b", "OK 2")
	cl.expect("GET c", "OK 3")

	// Batch updates overwrite like PUT does.
	cl.expect("MPUT a 10 d 4", "OK 2")
	cl.expect("GET a", "OK 10")
	cl.expect("GET d", "OK 4")

	// Inside a transaction: invisible until COMMIT.
	begin := cl.expectPrefix("BEGIN", "OK ")
	xid := strings.TrimPrefix(begin, "OK ")
	cl.expect("MPUT e 5 f 6", "OK 2")
	cl.expect("GET e", "NOTFOUND")
	cl.expect("COMMIT", "OK "+xid)
	cl.expect("GET e", "OK 5")
	cl.expect("GET f", "OK 6")

	// Malformed lines: empty and odd token counts.
	cl.expectPrefix("MPUT", "ERR usage")
	cl.expectPrefix("MPUT k", "ERR usage")
	cl.expectPrefix("MPUT k v k2", "ERR usage")

	// A duplicate user key within one batch: last write still resolves to
	// one visible version (the highest TID wins).
	cl.expect("MPUT dup x dup y", "OK 2")
	rows, final := cl.scan("SCAN dup dupz")
	if final != "OK 1" || len(rows) != 1 {
		t.Fatalf("SCAN after dup batch: rows=%v final=%q", rows, final)
	}

	// STATS surfaces the batched-path counters.
	reply := cl.expectPrefix("STATS", "OK ")
	var stats map[string]any
	if err := json.Unmarshal([]byte(strings.TrimPrefix(reply, "OK ")), &stats); err != nil {
		t.Fatalf("STATS JSON: %v", err)
	}
	for _, k := range []string{"batch_puts", "batch_leaf_runs", "evict_promotions"} {
		if _, ok := stats[k]; !ok {
			t.Fatalf("STATS missing %q: %v", k, stats)
		}
	}
	// 9 keys went through MPUT; the very first fell back to the single
	// insert path (root creation is exclusive), the rest batched.
	if bp, _ := stats["batch_puts"].(float64); bp < 8 {
		t.Fatalf("batch_puts = %v, want >= 8", stats["batch_puts"])
	}
}

// TestServerMputLargeBatchSharded drives a large MPUT through the sharded
// index: pairs fan out across shards and apply in parallel.
func TestServerMputLargeBatchSharded(t *testing.T) {
	store := core.Memory()
	db, err := core.Open(store, core.Config{Obs: obs.New(64)})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv, err := New(db, Options{Shards: 4, DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	cl := dial(t, srv)

	const n = 200
	var sb strings.Builder
	sb.WriteString("MPUT")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, " k%04d v%04d", i, i)
	}
	cl.expect(sb.String(), fmt.Sprintf("OK %d", n))
	for _, i := range []int{0, 1, 57, 123, n - 1} {
		cl.expect(fmt.Sprintf("GET k%04d", i), fmt.Sprintf("OK v%04d", i))
	}
	rows, final := cl.scan(fmt.Sprintf("SCAN - - %d", n))
	if final != fmt.Sprintf("OK %d", n) || len(rows) != n {
		t.Fatalf("SCAN: %d rows, final %q", len(rows), final)
	}
}
