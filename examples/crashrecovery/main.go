// Crash recovery: interrupt a page split mid-sync, reopen the index, and
// watch the paper's detection-and-repair machinery restore it on first use.
//
//	go run ./examples/crashrecovery
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/btree"
	"repro/internal/storage"
)

func key(i int) []byte {
	k := make([]byte, 4)
	binary.BigEndian.PutUint32(k, uint32(i))
	return k
}

func main() {
	for _, variant := range []btree.Variant{btree.Shadow, btree.Reorg} {
		fmt.Printf("=== %v index ===\n", variant)
		demo(variant)
		fmt.Println()
	}
}

func demo(variant btree.Variant) {
	disk := storage.NewMemDisk()
	idx, err := btree.Open(disk, variant, btree.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Commit a baseline: these keys must survive anything.
	const committed = 2000
	for i := 0; i < committed; i++ {
		if err := idx.Insert(key(i), []byte("committed")); err != nil {
			log.Fatal(err)
		}
	}
	if err := idx.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed %d keys\n", committed)

	// A transaction inserts more keys, splitting pages... and the
	// machine dies during its commit sync: only half the pages it handed
	// to the OS make it to the platter (§2's failure model, made real).
	for i := committed; i < committed+300; i++ {
		if err := idx.Insert(key(i), []byte("in-flight")); err != nil {
			log.Fatal(err)
		}
	}
	if err := idx.Pool().FlushDirty(); err != nil {
		log.Fatal(err)
	}
	pending := disk.PendingPages()
	err = disk.CrashPartial(func(p []storage.PageNo) []storage.PageNo {
		return p[:len(p)/2] // an arbitrary subset survives
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CRASH during sync: %d of %d in-flight pages reached the disk\n",
		len(pending)/2, len(pending))

	// Restart. No log replay, no recovery pass — just open the file.
	idx2, err := btree.Open(disk, variant, btree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reopened instantly (no write-ahead log to process)")

	// First use finds and repairs whatever the crash broke.
	for i := 0; i < committed; i++ {
		if _, err := idx2.Lookup(key(i)); err != nil {
			log.Fatalf("committed key %d lost: %v", i, err)
		}
	}
	fmt.Printf("all %d committed keys present\n", committed)
	fmt.Printf("repairs made on first use: inter-page=%d intra-page=%d root=%d peer=%d\n",
		idx2.Stats.RepairsInterPage.Load(),
		idx2.Stats.RepairsIntraPage.Load(),
		idx2.Stats.RepairsRoot.Load(),
		idx2.Stats.RepairsPeer.Load())

	// Complete the remaining lazy repairs and prove the structure sound.
	if err := idx2.RecoverAll(); err != nil {
		log.Fatal(err)
	}
	if err := idx2.Check(btree.CheckStrict); err != nil {
		log.Fatalf("structure check: %v", err)
	}
	fmt.Println("strict structure check: OK (sorted, ranged, peer chain consistent)")

	// And the index is fully writable again.
	for i := 10_000; i < 10_100; i++ {
		if err := idx2.Insert(key(i), []byte("post-crash")); err != nil {
			log.Fatal(err)
		}
	}
	if err := idx2.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("post-crash inserts and sync: OK")
}
