// Other index types: §1 of the paper claims the recovery techniques apply
// beyond B-link trees, naming R-trees and extensible hash indices. This
// example crashes a split of each and watches first-use recovery repair it.
//
//	go run ./examples/otherindexes
package main

import (
	"fmt"
	"log"

	"repro/internal/exthash"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func main() {
	hashDemo()
	fmt.Println()
	rtreeDemo()
}

func hashDemo() {
	fmt.Println("=== extensible hash index (shadowed buckets and directory) ===")
	disk := storage.NewMemDisk()
	ix, err := exthash.Open(disk, 0)
	if err != nil {
		log.Fatal(err)
	}
	const committed = 3000
	for i := 0; i < committed; i++ {
		if err := ix.Insert(k(i), []byte("v")); err != nil {
			log.Fatal(err)
		}
	}
	if err := ix.Sync(); err != nil {
		log.Fatal(err)
	}
	g, _ := ix.GlobalDepth()
	fmt.Printf("committed %d keys; directory depth %d after %d bucket splits and %d doublings\n",
		committed, g, ix.Splits, ix.Doublings)

	// More inserts split buckets; the machine dies mid-sync.
	for i := committed; i < committed+500; i++ {
		if err := ix.Insert(k(i), []byte("v")); err != nil {
			log.Fatal(err)
		}
	}
	if err := ix.Pool().FlushDirty(); err != nil {
		log.Fatal(err)
	}
	if err := disk.CrashPartial(func(p []storage.PageNo) []storage.PageNo {
		return p[:len(p)/2]
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("CRASH: half the pending pages reached the disk")

	ix2, err := exthash.Open(disk, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < committed; i++ {
		if _, err := ix2.Lookup(k(i)); err != nil {
			log.Fatalf("committed key %d lost: %v", i, err)
		}
	}
	fmt.Printf("all %d committed keys recovered (%d bucket repairs, %d directory repairs)\n",
		committed, ix2.Repairs, ix2.DirRepairs)
	if err := ix2.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("structure check: OK")
}

func rtreeDemo() {
	fmt.Println("=== R-tree (shadow triples with bounding rectangles) ===")
	disk := storage.NewMemDisk()
	tr, err := rtree.Open(disk, 0)
	if err != nil {
		log.Fatal(err)
	}
	const committed = 2000
	for i := 0; i < committed; i++ {
		if err := tr.Insert(rect(i), uint64(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := tr.Sync(); err != nil {
		log.Fatal(err)
	}
	h, _ := tr.Height()
	fmt.Printf("committed %d rectangles in a %d-level tree (%d splits)\n", committed, h, tr.Splits)

	for i := committed; i < committed+400; i++ {
		if err := tr.Insert(rect(i), uint64(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := tr.Pool().FlushDirty(); err != nil {
		log.Fatal(err)
	}
	if err := disk.CrashPartial(func(p []storage.PageNo) []storage.PageNo {
		return p[:len(p)/2]
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("CRASH: half the pending pages reached the disk")

	tr2, err := rtree.Open(disk, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < committed; i++ {
		hits, err := tr2.Search(rect(i))
		if err != nil {
			log.Fatal(err)
		}
		found := false
		for _, hh := range hits {
			if hh.ID == uint64(i) {
				found = true
			}
		}
		if !found {
			log.Fatalf("committed rectangle %d lost", i)
		}
	}
	fmt.Printf("all %d committed rectangles recovered (%d repairs, %d widenings)\n",
		committed, tr2.Repairs, tr2.Widenings)
	if err := tr2.RecoverAll(); err != nil {
		log.Fatal(err)
	}
	if err := tr2.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("structure check: OK")
}

func k(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func rect(i int) rtree.Rect {
	x := int32(i%1000) * 10
	y := int32(i/1000) * 10
	return rtree.Rect{MinX: x, MinY: y, MaxX: x + 5, MaxY: y + 5}
}
