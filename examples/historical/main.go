// Historical data: the POSTGRES storage system keeps every committed tuple
// version, so the database can answer queries as of any past transaction —
// the capability the no-overwrite design trades its log for. This example
// runs a tiny account ledger through updates and reads it back at three
// points in its history, all through the crash-recoverable index.
//
//	go run ./examples/historical
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/heap"
)

func main() {
	db, err := core.Open(core.Memory(), core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	accounts, err := db.CreateRelation("accounts")
	if err != nil {
		log.Fatal(err)
	}
	byName, err := db.CreateIndex("accounts_name", core.Shadow)
	if err != nil {
		log.Fatal(err)
	}

	// Era 1: open the account with 100 credits.
	tx1 := db.Begin()
	tid1, err := accounts.Insert(tx1, []byte("alice=100"))
	if err != nil {
		log.Fatal(err)
	}
	if err := byName.InsertTID(tx1, []byte("alice"), tid1); err != nil {
		log.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		log.Fatal(err)
	}
	era1 := db.Manager().HighestCommitted()

	// Era 2: balance becomes 250. The update writes a NEW version; the
	// old one stays, invalidated but preserved.
	tx2 := db.Begin()
	tid2, err := accounts.Update(tx2, tid1, []byte("alice=250"))
	if err != nil {
		log.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		log.Fatal(err)
	}
	era2 := db.Manager().HighestCommitted()

	// Era 3: the account closes.
	tx3 := db.Begin()
	if err := accounts.Delete(tx3, tid2); err != nil {
		log.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		log.Fatal(err)
	}

	// Current state: the index key resolves, but no version is visible —
	// readers "detect and ignore records pointed to by invalid keys".
	if _, err := byName.FetchVisible(accounts, []byte("alice")); err != nil {
		fmt.Println("now:        account closed —", err)
	}

	// Time travel: read each version as of its era.
	v1, err := accounts.FetchAsOf(tid1, era1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("as of era 1 (xid %d): %s\n", era1, v1)

	v2, err := accounts.FetchAsOf(tid2, era2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("as of era 2 (xid %d): %s\n", era2, v2)

	if _, err := accounts.FetchAsOf(tid1, era2); err != nil {
		fmt.Printf("as of era 2, version 1 is already superseded: %v\n", err)
	}

	// An aborted transaction's writes simply never become visible — in
	// any era. No undo happened; the status table just lacks its XID.
	tx4 := db.Begin()
	tid4, err := accounts.Insert(tx4, []byte("mallory=999999"))
	if err != nil {
		log.Fatal(err)
	}
	if err := tx4.Abort(); err != nil {
		log.Fatal(err)
	}
	if _, err := accounts.Fetch(tid4); err != nil {
		fmt.Println("aborted insert invisible:", err)
	}
	if _, err := accounts.FetchAsOf(tid4, heap.XID(1<<62)); err != nil {
		fmt.Println("...even to far-future historical reads:", err)
	}
}
