// Logical logging: §4 of the paper argues a conventional WAL DBMS can adopt
// the recovery techniques to replace physical index logging (every key
// moved by a split logged as a delete+insert pair) with logical logging
// (one small record per user operation, no split records at all). This
// example runs the same insert workload under both disciplines and compares
// log volume, then demonstrates the fault-containment claim: logical
// recovery regenerates the index from operations, so corrupted index bytes
// can never ride the log back in.
//
//	go run ./examples/logicallog
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/btree"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/wal"
)

func key(i int) []byte {
	k := make([]byte, 4)
	binary.BigEndian.PutUint32(k, uint32(i))
	return k
}

func newIdx(v btree.Variant) *btree.Tree {
	t, err := btree.Open(storage.NewMemDisk(), v, btree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return t
}

func main() {
	const n = 20000
	keysPerPage := model.LeafFanout(4, 9)

	// The same split-heavy workload under both disciplines. The physical
	// manager drives a normal B-link tree (it needs the log for crash
	// consistency); the logical manager drives a shadow tree (the index
	// recovers itself, so splits log nothing).
	phys := wal.NewManager(wal.Physical, newIdx(btree.Normal), keysPerPage)
	logi := wal.NewManager(wal.Logical, newIdx(btree.Shadow), keysPerPage)
	for i := 0; i < n; i++ {
		if err := phys.Insert(key(i), []byte("v")); err != nil {
			log.Fatal(err)
		}
		if err := logi.Insert(key(i), []byte("v")); err != nil {
			log.Fatal(err)
		}
	}
	phys.Commit()
	logi.Commit()

	pb, lb := phys.Log().Bytes(), logi.Log().Bytes()
	fmt.Printf("workload: %d ascending inserts (maximum split rate)\n\n", n)
	fmt.Printf("%-10s %12s %10s\n", "discipline", "log bytes", "records")
	fmt.Printf("%-10s %12d %10d\n", "physical", pb, phys.Log().Len())
	fmt.Printf("%-10s %12d %10d\n", "logical", lb, logi.Log().Len())
	fmt.Printf("\nlogical log is %.1fx more compact\n", float64(pb)/float64(lb))

	// Recovery: replay the logical log into a fresh index using the
	// ordinary insert path — "the same insert and delete operations used
	// for normal execution are also used for recovery" (§4).
	fresh := newIdx(btree.Shadow)
	if err := wal.Recover(logi.Log(), fresh); err != nil {
		log.Fatal(err)
	}
	cnt, err := fresh.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlogical recovery rebuilt the index: %d keys\n", cnt)

	// Fault containment: physical logging copies index bytes; logical
	// logging never does.
	corrupt := 0
	for _, r := range phys.Log().Records() {
		if r.Type == wal.RecSplitMove {
			corrupt++ // any corrupted key on the page would be in here
		}
	}
	fmt.Printf("\nphysical log carries %d copied index keys — any software-corrupted\n", corrupt)
	fmt.Println("key among them would be faithfully restored at recovery.")
	fmt.Println("the logical log carries zero index-internal bytes: corruption cannot propagate.")
}
