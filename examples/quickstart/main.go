// Quickstart: create a crash-recoverable index, insert, look up, and scan.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/btree"
	"repro/internal/storage"
)

func main() {
	// An index lives on a page device; use an in-memory one here (see
	// storage.OpenFileDisk for a durable file). The Shadow variant is
	// Technique One of the paper: crash-consistent without any log.
	disk := storage.NewMemDisk()
	idx, err := btree.Open(disk, btree.Shadow, btree.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Insert some keys. Keys are arbitrary bytes; byte order is key
	// order.
	for _, user := range []string{"alice", "bob", "carol", "dave", "erin"} {
		if err := idx.Insert([]byte(user), []byte("uid:"+user)); err != nil {
			log.Fatal(err)
		}
	}

	// Point lookup.
	v, err := idx.Lookup([]byte("carol"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("carol -> %s\n", v)

	// Range scan over ["b","d"): bob, carol.
	fmt.Println("users in [b,d):")
	err = idx.Scan([]byte("b"), []byte("d"), func(k, v []byte) bool {
		fmt.Printf("  %s -> %s\n", k, v)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}

	// Commit: force every modified page to stable storage (the paper's
	// §2 model — no write-ahead log anywhere).
	if err := idx.Sync(); err != nil {
		log.Fatal(err)
	}

	// Deletes are in-place and crash-careful too.
	if err := idx.Delete([]byte("dave")); err != nil {
		log.Fatal(err)
	}
	if _, err := idx.Lookup([]byte("dave")); err != nil {
		fmt.Println("dave deleted:", err)
	}

	n, err := idx.Count()
	if err != nil {
		log.Fatal(err)
	}
	h, err := idx.Height()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index holds %d keys in a %d-level tree\n", n, h)
}
