// Package repro is a from-scratch Go reproduction of Sullivan & Olson,
// "An Index Implementation Supporting Fast Recovery for the POSTGRES
// Storage System" (ICDE 1992): crash-recoverable B-link-tree indexes for a
// no-overwrite storage system that has no write-ahead log.
//
// The library lives under internal/; see README.md for the architecture,
// DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for the paper-versus-measured results. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation.
package repro
