// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark names the experiment from DESIGN.md it backs:
//
//	BenchmarkTable1Insert  — E1: Table 1, ascending-key index builds
//	BenchmarkTable1Lookup  — E2: Table 1, 8,000 random lookups
//	BenchmarkHeightModel   — E3: §5 tree-height analysis
//	BenchmarkWisconsin     — E4: §6 access-method time fraction
//	BenchmarkLogVolume     — E5: §4 logical vs physical log bytes
//	BenchmarkRecovery      — E6: §1 restart cost, no-log vs log replay
//	BenchmarkAblation*     — design-choice ablations from DESIGN.md
package repro_test

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/wal"
	"repro/internal/wisconsin"
)

func key(i int) []byte {
	k := make([]byte, 4)
	binary.BigEndian.PutUint32(k, uint32(i))
	return k
}

var table1Variants = []btree.Variant{btree.Normal, btree.Reorg, btree.Shadow}
var table1Sizes = []int{10000, 20000, 40000}

// buildAscending constructs the Table 1 index: n ascending 4-byte keys,
// the paper's worst case for split performance.
func buildAscending(b *testing.B, v btree.Variant, n int, opts btree.Options) *btree.Tree {
	b.Helper()
	tr, err := btree.Open(storage.NewMemDisk(), v, opts)
	if err != nil {
		b.Fatal(err)
	}
	value := []byte("v00000000")
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), value); err != nil {
			b.Fatal(err)
		}
	}
	return tr
}

// BenchmarkTable1Insert regenerates the insert half of Table 1: one
// benchmark op is one complete index build.
func BenchmarkTable1Insert(b *testing.B) {
	for _, v := range table1Variants {
		for _, n := range table1Sizes {
			b.Run(fmt.Sprintf("%v/%d", v, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					tr := buildAscending(b, v, n, btree.Options{})
					if tr.Stats.Inserts.Load() != uint64(n) {
						b.Fatal("short build")
					}
				}
			})
		}
	}
}

// BenchmarkTable1Lookup regenerates the lookup half of Table 1: uniformly
// distributed random lookups against each prebuilt index.
func BenchmarkTable1Lookup(b *testing.B) {
	for _, v := range table1Variants {
		for _, n := range table1Sizes {
			b.Run(fmt.Sprintf("%v/%d", v, n), func(b *testing.B) {
				tr := buildAscending(b, v, n, btree.Options{})
				if err := tr.Sync(); err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(1992))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := tr.Lookup(key(rng.Intn(n))); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable1Scan extends Table 1 with range-scan cost over the peer
// chain (the reason the indexes are B-link trees at all).
func BenchmarkTable1Scan(b *testing.B) {
	for _, v := range table1Variants {
		b.Run(v.String(), func(b *testing.B) {
			tr := buildAscending(b, v, 40000, btree.Options{})
			if err := tr.Sync(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				err := tr.Scan(key(10000), key(20000), func(_, _ []byte) bool {
					n++
					return true
				})
				if err != nil || n != 10000 {
					b.Fatalf("scan: n=%d err=%v", n, err)
				}
			}
		})
	}
}

// BenchmarkHeightModel regenerates the §5 analysis and reports the shadow
// fanout penalty as a metric.
func BenchmarkHeightModel(b *testing.B) {
	sizes := []int{1000, 10000, 40000, 100000, 1000000, 10000000}
	var rows []model.Row
	for i := 0; i < b.N; i++ {
		rows = model.Analyze([]int{4, 8, 16, 64}, sizes, 1.0)
	}
	differ := 0
	for _, r := range rows {
		if r.ShadowLevels != r.NormalLevels {
			differ++
		}
	}
	b.ReportMetric(float64(differ)/float64(len(rows)), "height-divergence-fraction")
	in, is := model.InternalFanout(4, false), model.InternalFanout(4, true)
	b.ReportMetric(100*float64(in-is)/float64(in), "prevptr-fanout-loss-%")
}

// BenchmarkWisconsin regenerates the §6 measurement: the fraction of
// workload time inside the index access method, per variant.
func BenchmarkWisconsin(b *testing.B) {
	for _, v := range table1Variants {
		b.Run(v.String(), func(b *testing.B) {
			db, err := core.Open(core.Memory(), core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			w, err := wisconsin.Load(db, "wisc", 10000, v, rng)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var frac float64
			for i := 0; i < b.N; i++ {
				tm, err := w.RunSelections(rng, 30)
				if err != nil {
					b.Fatal(err)
				}
				frac = tm.Fraction()
			}
			b.ReportMetric(100*frac, "access-method-%")
		})
	}
}

// BenchmarkLogVolume regenerates the §4 comparison: bytes logged per insert
// under physical vs logical index logging.
func BenchmarkLogVolume(b *testing.B) {
	kpp := model.LeafFanout(4, 9)
	for _, mode := range []wal.Mode{wal.Physical, wal.Logical} {
		b.Run(mode.String(), func(b *testing.B) {
			variant := btree.Normal
			if mode == wal.Logical {
				variant = btree.Shadow
			}
			var bytesPerInsert float64
			for i := 0; i < b.N; i++ {
				tr, err := btree.Open(storage.NewMemDisk(), variant, btree.Options{})
				if err != nil {
					b.Fatal(err)
				}
				m := wal.NewManager(mode, tr, kpp)
				const n = 10000
				for j := 0; j < n; j++ {
					if err := m.Insert(key(j), []byte("v")); err != nil {
						b.Fatal(err)
					}
				}
				bytesPerInsert = float64(m.Log().Bytes()) / n
			}
			b.ReportMetric(bytesPerInsert, "log-bytes/insert")
		})
	}
}

// BenchmarkRecovery regenerates the §1 availability claim: restart after a
// crash costs almost nothing because there is no log to process — repairs
// happen lazily on first use. The comparison case replays a logical log of
// the same workload, which is what a WAL system's restart must do.
func BenchmarkRecovery(b *testing.B) {
	const n = 20000
	b.Run("no-log-reopen", func(b *testing.B) {
		// One crashed image, reopened b.N times: the measured cost is
		// Open plus the first 100 lookups (which perform any repairs).
		d := storage.NewMemDisk()
		tr, err := btree.Open(d, btree.Shadow, btree.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := tr.Insert(key(i), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		if err := tr.Sync(); err != nil {
			b.Fatal(err)
		}
		for i := n; i < n+200; i++ {
			if err := tr.Insert(key(i), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		if err := tr.Pool().FlushDirty(); err != nil {
			b.Fatal(err)
		}
		if err := d.CrashPartial(func(p []storage.PageNo) []storage.PageNo { return p[:len(p)/2] }); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr2, err := btree.Open(d, btree.Shadow, btree.Options{})
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 100; j++ {
				if _, err := tr2.Lookup(key(j * (n / 100))); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("log-replay", func(b *testing.B) {
		// The WAL counterpart: rebuild index state by replaying the
		// operation log.
		m := wal.NewManager(wal.Logical, mustTree(b, btree.Shadow), model.LeafFanout(4, 9))
		for i := 0; i < n; i++ {
			if err := m.Insert(key(i), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fresh := mustTree(b, btree.Shadow)
			if err := wal.Recover(m.Log(), fresh); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func mustTree(b *testing.B, v btree.Variant) *btree.Tree {
	b.Helper()
	tr, err := btree.Open(storage.NewMemDisk(), v, btree.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkAblationRangeCheck isolates the cost of the descent-time
// key-range verification — the overhead Table 1 attributes to "verifying
// inter-page links in traversing the tree".
func BenchmarkAblationRangeCheck(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			tr := buildAscending(b, btree.Shadow, 40000, btree.Options{DisableRangeCheck: disable})
			if err := tr.Sync(); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(3))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Lookup(key(rng.Intn(40000))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPeerToken isolates the peer-pointer sync-token
// verification on scans (§3.5.1).
func BenchmarkAblationPeerToken(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			tr := buildAscending(b, btree.Shadow, 40000, btree.Options{DisablePeerCheck: disable})
			if err := tr.Sync(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				if err := tr.Scan(key(0), key(10000), func(_, _ []byte) bool { n++; return true }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationReorgDoubleSplit measures the §3.4 reclaim case (1)
// penalty: random inserts hit pages still carrying un-synced duplicate keys
// and must block for a sync, the workload shape the paper says page
// reorganization handles worst.
func BenchmarkAblationReorgDoubleSplit(b *testing.B) {
	for _, v := range []btree.Variant{btree.Reorg, btree.Shadow} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := mustTree(b, v)
				rng := rand.New(rand.NewSource(11))
				for _, k := range rng.Perm(20000) {
					if err := tr.Insert(key(k), []byte("v")); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(tr.Stats.BlockedSyncs.Load()), "forced-syncs")
			}
		})
	}
}

// BenchmarkAblationHybrid compares the §1 hybrid suggestion (shadow at the
// leaves, reorganization above) against both parents on the Table 1 insert
// workload.
func BenchmarkAblationHybrid(b *testing.B) {
	for _, v := range []btree.Variant{btree.Shadow, btree.Reorg, btree.Hybrid} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buildAscending(b, v, 20000, btree.Options{})
			}
		})
	}
}
