# Single entry point for the repo's checks. `make check` is the whole CI:
# vet + build + tier-1 tests + the race-enabled suite + the repair-case
# coverage gate + the degraded-mode/quarantine gate + nested-fault crash
# rounds + a one-iteration smoke of the parallel benchmarks + the serving
# layer smoke (full protocol over TCP, crash-recover round, group-commit
# batching under concurrent clients).

GO ?= go

.PHONY: check vet build test test-short race repair-coverage quarantine nested-faults bench bench-smoke bench-parallel server-smoke bench-server shard-smoke bench-shards hotpath-smoke bench-hotpath bulkload-smoke bench-rebuild

check: vet build test race repair-coverage quarantine nested-faults bench-smoke server-smoke shard-smoke hotpath-smoke bulkload-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Tier-1: the full test suite (see ROADMAP.md).
test:
	$(GO) test ./...

# Quick iteration: skips the file-backed crash enumerations and fuzzers.
test-short:
	$(GO) test -short ./...

# The whole repo under the race detector (-short skips the slow crash
# enumerations; the §3.6 shared-mode paths and the observability recorder
# are what the detector is for).
race:
	$(GO) test -race -short ./...

# The coverage gate: counters must prove the §3.3 prevPtr re-copy and every
# §3.4 case (a)-(e) actually fired, or the build fails naming the missing
# cases.
repair-coverage:
	$(GO) test ./internal/btree -run TestRepairCaseCoverage

# The degraded-mode gate: quarantine registry semantics, skip-and-report
# scans, supervisor heal/rebuild, and the health-state machine — including
# the counter-backed Healthy -> Degraded -> Healthy acceptance scenario.
quarantine:
	$(GO) test ./internal/buffer -run 'TestRetryExhausted|TestZeroRoute|TestMetaPageQuarantine|TestQuarantineBackoff|TestNewPageReleases'
	$(GO) test ./internal/btree -run 'TestDegradedScan|TestHealQuarantined'
	$(GO) test ./internal/core -run 'TestHealth|TestSupervisor'

# Crash-during-recovery hardening: the in-process idempotence tests plus a
# few fastrec-crash rounds that crash again while repair is in flight.
nested-faults:
	$(GO) test ./internal/btree -run 'NestedCrash'
	$(GO) run ./cmd/fastrec-crash -variant shadow -rounds 3 -nested-faults -seed 1
	$(GO) run ./cmd/fastrec-crash -variant reorg -rounds 3 -nested-faults -faults -seed 1

# One iteration of each parallel benchmark (proves the concurrency plumbing
# works end to end), plus the disabled-recorder overhead bound: obs calls
# on a nil recorder must stay within a few ns.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkParallel' -benchtime 1x .
	$(GO) test ./internal/obs -run TestDisabledOverhead

# The full benchmark suite (paper experiments + parallel scaling).
bench:
	$(GO) test -bench . -benchmem ./...

# The §3.6 scaling sweep behind BENCH_concurrency.json (see EXPERIMENTS.md).
bench-parallel:
	$(GO) run ./cmd/fastrec-bench -procs 1,2,4,8,16,32 -json

# The serving-layer gate: every protocol verb over real TCP, graceful
# shutdown draining an in-flight commit, the wire-level crash-recover
# round, and concurrent clients actually coalescing in the group-commit
# coordinator — all under the race detector, plus the coordinator's own
# crash-semantics tests (batch invisibility on a crash between the shared
# sync and the status write).
server-smoke:
	$(GO) test -race ./internal/server
	$(GO) test -race ./internal/txn -run 'TestGroupCommit|TestBatch|TestSpill|TestCommit|TestStatusAppend|TestVisibility'

# The commit-throughput sweep behind BENCH_server.json (see EXPERIMENTS.md).
bench-server:
	$(GO) run ./cmd/fastrec-bench -server -clients 1,2,4,8 -json

# The sharding gate, all under the race detector: the router's merged
# scans and parallel recovery, the sharded core index (crash/recover with
# every shard dirty, supervisor healing a fault in every shard, heap
# rebuilds that respect shard routing), the txn layer's parallel force
# fan-out across sync domains, and a multi-shard server crash/recover
# round over real TCP.
shard-smoke:
	$(GO) test -race ./internal/shard
	$(GO) test -race ./internal/core -run TestSharded
	$(GO) test -race ./internal/txn -run TestBatchForce
	$(GO) test -race ./internal/server -run TestServerSharded

# The hot-path gate: the zero-allocation point-op assertions (a warm lookup
# hit and a no-split insert must not touch the heap), batched inserts racing
# point inserts under the race detector, the scan-resistant eviction tests
# (including the exact legacy-clock fallback for tiny stripes), and the
# batched MPUT verb end to end over TCP.
hotpath-smoke:
	$(GO) test ./internal/btree -run 'ZeroAllocs|TestInsertBatch|TestLookupInto'
	$(GO) test -race ./internal/btree -run TestInsertBatchConcurrent
	$(GO) test ./internal/buffer -run 'TestScanResist|TestTinyPool|TestSetLegacy'
	$(GO) test -race ./internal/server -run TestServerMput

# The hot-path measurement suite behind BENCH_hotpath.json (see
# EXPERIMENTS.md E11): point-op ns/op and allocs/op, batched vs single
# durable write throughput, and the scan-heavy eviction hit rates. Supports
# -cpuprofile/-memprofile for drill-downs.
bench-hotpath:
	$(GO) run ./cmd/fastrec-bench -hotpath

# The shard-scaling and parallel-recovery sweeps behind the "sharded" and
# "recovery" sections of BENCH_concurrency.json (see EXPERIMENTS.md).
bench-shards:
	$(GO) run ./cmd/fastrec-bench -shards 1,2,4,8 -procs 16,32 -op mixed -json
	$(GO) run ./cmd/fastrec-bench -recover -shards 1,2,4,8 -json

# The bulk-load gate: the loader's differential and property tests against
# the insert path, the core bulk-load/rebuild-from-heap layer (sharded
# rebuilds and the supervisor's wholesale escalation) under the race
# detector, the dump tool's rebuild round trip, and crash enumeration at
# every sync point of a bulk load and a wholesale rebuild for two variants.
bulkload-smoke:
	$(GO) test -race ./internal/btree -run 'TestBulkLoad|TestBulkReplace|TestQuickBulkLoad'
	$(GO) test -race ./internal/core -run 'TestIndexBulkLoad|TestShardedBulkLoad|TestIndexRebuild|TestShardedRebuild|TestSupervisorWholesale'
	$(GO) test ./cmd/fastrec-dump -run TestRebuildDir
	$(GO) run ./cmd/fastrec-crash -variant shadow -bulkload -bulk-keys 1200 -seed 1
	$(GO) run ./cmd/fastrec-crash -variant reorg -bulkload -bulk-keys 1200 -faults -seed 1

# The bulk-load and rebuild measurements behind BENCH_rebuild.json (see
# EXPERIMENTS.md E12): bulk vs incremental build speed, and per-page reseed
# vs wholesale rebuild on identical media-damage images.
bench-rebuild:
	$(GO) run ./cmd/fastrec-bench -rebuild -json > BENCH_rebuild.json
	@cat BENCH_rebuild.json
