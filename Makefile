# Single entry point for the repo's checks. `make check` is the whole CI:
# vet + build + tier-1 tests + the race-enabled concurrency tests + a
# one-iteration smoke of the parallel benchmarks.

GO ?= go

.PHONY: check vet build test test-short race bench bench-smoke bench-parallel

check: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Tier-1: the full test suite (see ROADMAP.md).
test:
	$(GO) test ./...

# Quick iteration: skips the file-backed crash enumerations and fuzzers.
test-short:
	$(GO) test -short ./...

# The concurrent-access tests under the race detector: the §3.6 shared-mode
# tree paths and the striped buffer pool's stat/flush surfaces.
race:
	$(GO) test -race ./internal/btree -run 'Concurrent'
	$(GO) test -race ./internal/buffer -run 'Concurrent|Stats'

# One iteration of each parallel benchmark: proves the concurrency plumbing
# still works end to end without measuring anything.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkParallel' -benchtime 1x .

# The full benchmark suite (paper experiments + parallel scaling).
bench:
	$(GO) test -bench . -benchmem ./...

# The §3.6 scaling sweep behind BENCH_concurrency.json (see EXPERIMENTS.md).
bench-parallel:
	$(GO) run ./cmd/fastrec-bench -procs 1,2,4,8 -json
