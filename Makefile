# Single entry point for the repo's checks. `make check` is the whole CI:
# vet + build + tier-1 tests + the race-enabled concurrency tests.

GO ?= go

.PHONY: check vet build test test-short race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Tier-1: the full test suite (see ROADMAP.md).
test:
	$(GO) test ./...

# Quick iteration: skips the file-backed crash enumerations and fuzzers.
test-short:
	$(GO) test -short ./...

# The concurrent-access tests under the race detector.
race:
	$(GO) test -race ./internal/btree -run 'Concurrent'

bench:
	$(GO) test -bench . -benchmem ./...
