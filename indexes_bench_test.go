// Benchmarks for the §1 extension claim — the recovery techniques applied
// to extensible hash indexes and R-trees — comparing them with the B-link
// tree on equivalent workloads and measuring their no-log restart cost.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/btree"
	"repro/internal/exthash"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// BenchmarkIndexTypesInsert compares point-insert cost across the three
// recoverable index structures.
func BenchmarkIndexTypesInsert(b *testing.B) {
	const n = 10000
	b.Run("btree-shadow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := mustTree(b, btree.Shadow)
			for j := 0; j < n; j++ {
				if err := tr.Insert(key(j), []byte("v")); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("exthash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix, err := exthash.Open(storage.NewMemDisk(), 0)
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < n; j++ {
				if err := ix.Insert(key(j), []byte("v")); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("rtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr, err := rtree.Open(storage.NewMemDisk(), 0)
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < n; j++ {
				x := int32(j%100) * 10
				y := int32(j/100) * 10
				if err := tr.Insert(rtree.Rect{MinX: x, MinY: y, MaxX: x + 5, MaxY: y + 5}, uint64(j)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkIndexTypesLookup compares point-lookup cost.
func BenchmarkIndexTypesLookup(b *testing.B) {
	const n = 10000
	b.Run("btree-shadow", func(b *testing.B) {
		tr := mustTree(b, btree.Shadow)
		for j := 0; j < n; j++ {
			if err := tr.Insert(key(j), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		if err := tr.Sync(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tr.Lookup(key(i % n)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exthash", func(b *testing.B) {
		ix, err := exthash.Open(storage.NewMemDisk(), 0)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if err := ix.Insert(key(j), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		if err := ix.Sync(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ix.Lookup(key(i % n)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rtree-point", func(b *testing.B) {
		tr, err := rtree.Open(storage.NewMemDisk(), 0)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < n; j++ {
			x := int32(j%100) * 10
			y := int32(j/100) * 10
			if err := tr.Insert(rtree.Rect{MinX: x, MinY: y, MaxX: x + 5, MaxY: y + 5}, uint64(j)); err != nil {
				b.Fatal(err)
			}
		}
		if err := tr.Sync(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % n
			x := int32(j%100) * 10
			y := int32(j/100) * 10
			hits, err := tr.Search(rtree.Rect{MinX: x, MinY: y, MaxX: x + 5, MaxY: y + 5})
			if err != nil || len(hits) == 0 {
				b.Fatalf("hits=%d err=%v", len(hits), err)
			}
		}
	})
}

// BenchmarkIndexTypesRecovery measures no-log restart (open + touch) for
// each structure after a crash that loses half the pending pages.
func BenchmarkIndexTypesRecovery(b *testing.B) {
	half := func(p []storage.PageNo) []storage.PageNo { return p[:len(p)/2] }
	const n = 5000

	b.Run("btree-shadow", func(b *testing.B) {
		d := storage.NewMemDisk()
		tr, err := btree.Open(d, btree.Shadow, btree.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if err := tr.Insert(key(j), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		if err := tr.Sync(); err != nil {
			b.Fatal(err)
		}
		for j := n; j < n+300; j++ {
			if err := tr.Insert(key(j), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		if err := tr.Pool().FlushDirty(); err != nil {
			b.Fatal(err)
		}
		if err := d.CrashPartial(half); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr2, err := btree.Open(d, btree.Shadow, btree.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tr2.Lookup(key(n / 2)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exthash", func(b *testing.B) {
		d := storage.NewMemDisk()
		ix, err := exthash.Open(d, 0)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if err := ix.Insert(key(j), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		if err := ix.Sync(); err != nil {
			b.Fatal(err)
		}
		for j := n; j < n+300; j++ {
			if err := ix.Insert(key(j), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		if err := ix.Pool().FlushDirty(); err != nil {
			b.Fatal(err)
		}
		if err := d.CrashPartial(half); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix2, err := exthash.Open(d, 0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ix2.Lookup(key(n / 2)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// smoke check for the bench file itself.
func TestIndexTypeBenchHarness(t *testing.T) {
	ix, err := exthash.Open(storage.NewMemDisk(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	rt, err := rtree.Open(storage.NewMemDisk(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Insert(rtree.Rect{MaxX: 1, MaxY: 1}, 1); err != nil {
		t.Fatal(err)
	}
	_ = fmt.Sprint(ix, rt)
}
