// Parallel benchmarks for the §3.6 concurrency protocol: ops/sec scaling
// of lookups, inserts, and a 50/50 mix at 1/2/4/8 goroutines over one
// tree, for all three variants (E7 in DESIGN.md, "§3.6 realized").
//
// The regime mirrors the paper's hardware balance: a simulated per-page
// device latency makes the workload I/O-bound, so concurrency shows up as
// overlapped I/O waits even on a single CPU — the tree is larger than the
// buffer pool and most descents miss on their leaf. The committed
// baseline lives in BENCH_concurrency.json (see EXPERIMENTS.md).
package repro_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/btree"
	"repro/internal/storage"
)

const (
	benchKeys    = 80_000                // tree size: ~460 leaves, well over the pool
	benchPool    = 256                   // 16 lock stripes
	benchLatency = 100 * time.Microsecond // simulated device latency per page I/O
)

// benchTree caches one loaded tree per variant: building 80k keys is far
// more expensive than any measurement pass, and the lookup/mixed/insert
// benchmarks can share a tree (inserts use fresh keys above the preload).
var benchTrees = struct {
	sync.Mutex
	m map[btree.Variant]*benchState
}{m: make(map[btree.Variant]*benchState)}

type benchState struct {
	tr   *btree.Tree
	disk *storage.MemDisk
}

func loadBenchTree(b *testing.B, v btree.Variant) *benchState {
	b.Helper()
	benchTrees.Lock()
	defer benchTrees.Unlock()
	if st, ok := benchTrees.m[v]; ok {
		return st
	}
	disk := storage.NewMemDisk()
	tr, err := btree.Open(disk, v, btree.Options{PoolSize: benchPool})
	if err != nil {
		b.Fatal(err)
	}
	value := []byte("v00000000")
	for i := 0; i < benchKeys; i++ {
		if err := tr.Insert(benchKey(i, 0), value); err != nil {
			b.Fatal(err)
		}
	}
	if err := tr.Sync(); err != nil {
		b.Fatal(err)
	}
	// Only the measurement runs against a slow device.
	disk.SetLatency(benchLatency, benchLatency)
	st := &benchState{tr: tr, disk: disk}
	benchTrees.m[v] = st
	return st
}

// benchKey builds a 12-byte key: an 8-byte position locating the target
// leaf plus a 4-byte uniquifier. The preload uses uniquifier 0; insert
// benchmarks use random nonzero uniquifiers at random positions, so fresh
// keys interleave with the preload and land on uniformly random leaves —
// the disjoint-leaf insert concurrency §3.6 promises, and leaf-miss I/O
// keeps the workload device-bound.
func benchKey(pos int, uniq uint32) []byte {
	k := make([]byte, 12)
	binary.BigEndian.PutUint64(k, uint64(pos))
	binary.BigEndian.PutUint32(k[8:], uniq)
	return k
}

var benchVariants = []btree.Variant{btree.Normal, btree.Reorg, btree.Shadow}

// procCounts are the goroutine counts of the scaling sweep. RunParallel
// spawns parallelism × GOMAXPROCS goroutines; with an I/O-bound workload
// the sweep is meaningful on any CPU count.
var procCounts = []int{1, 2, 4, 8}

func BenchmarkParallelLookup(b *testing.B) {
	for _, v := range benchVariants {
		st := loadBenchTree(b, v)
		for _, g := range procCounts {
			b.Run(fmt.Sprintf("%s/g%d", v, g), func(b *testing.B) {
				b.SetParallelism(g)
				var seed atomic.Uint64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(int64(seed.Add(1)) * 7919))
					for pb.Next() {
						if _, err := st.tr.Lookup(benchKey(rng.Intn(benchKeys), 0)); err != nil {
							b.Error(err)
							return
						}
					}
				})
				reportOps(b)
			})
		}
	}
}

func BenchmarkParallelInsert(b *testing.B) {
	for _, v := range benchVariants {
		st := loadBenchTree(b, v)
		for _, g := range procCounts {
			b.Run(fmt.Sprintf("%s/g%d", v, g), func(b *testing.B) {
				b.SetParallelism(g)
				value := []byte("v00000000")
				var seed atomic.Uint64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(int64(seed.Add(1)) * 15485863))
					for pb.Next() {
						k := benchKey(rng.Intn(benchKeys), 1+rng.Uint32())
						if err := st.tr.Insert(k, value); err != nil &&
							!errors.Is(err, btree.ErrDuplicateKey) {
							b.Error(err)
							return
						}
					}
				})
				reportOps(b)
			})
		}
	}
}

func BenchmarkParallelMixed(b *testing.B) {
	for _, v := range benchVariants {
		st := loadBenchTree(b, v)
		for _, g := range procCounts {
			b.Run(fmt.Sprintf("%s/g%d", v, g), func(b *testing.B) {
				b.SetParallelism(g)
				value := []byte("v00000000")
				var seed atomic.Uint64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(int64(seed.Add(1)) * 104729))
					for i := 0; pb.Next(); i++ {
						if i%2 == 0 {
							if _, err := st.tr.Lookup(benchKey(rng.Intn(benchKeys), 0)); err != nil {
								b.Error(err)
								return
							}
						} else {
							k := benchKey(rng.Intn(benchKeys), 1+rng.Uint32())
							if err := st.tr.Insert(k, value); err != nil &&
								!errors.Is(err, btree.ErrDuplicateKey) {
								b.Error(err)
								return
							}
						}
					}
				})
				reportOps(b)
			})
		}
	}
}

// reportOps emits ops/sec so benchstat and the scaling check in
// EXPERIMENTS.md read directly off the benchmark output.
func reportOps(b *testing.B) {
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}
